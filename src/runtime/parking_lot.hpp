/**
 * @file
 * Event-driven worker parking lot (futex on Linux, condvar fallback)
 * with per-worker wake words, so producers can *target* a wake.
 *
 * Each worker owns a 32-bit wake epoch in its own cacheline. A thief
 * that wants to park follows the three-step sequence
 *
 *   1. e = prepare(w)           — snapshot its own epoch
 *   2. publish "w is parked"    — seq_cst store/RMW, done by the caller
 *   3. re-check for work        — seq_cst loads, done by the caller
 *   4. wait(w, e)               — block only while the epoch is still e
 *
 * and a producer follows
 *
 *   1. publish the work         — seq_cst store (deque tail / inject count)
 *   2. pick a parked thief w    — seq_cst scan of the parked flags
 *      (the topology-aware selection policy lives in Runtime:
 *      same-domain parked workers are preferred — docs/STEALING.md)
 *   3. notifyWorker(w)          — bump w's epoch, wake w
 *
 * The publish-then-recheck pairing is a Dekker handshake, per slot:
 * both sides write their flag (parked flag / work state) before
 * reading the other's, all with sequentially consistent ordering, so
 * at least one side observes the other. If the thief sees the work it
 * never blocks; if the producer sees the thief parked it bumps *that
 * thief's* epoch, and wait() cannot miss the bump because the kernel
 * (futex) or the mutex (condvar fallback) re-validates the epoch
 * atomically against blocking: a bump that lands before the thief is
 * queued fails the epoch comparison and wait() returns immediately.
 * A producer that targets a worker which already unparked merely
 * wastes one bump (the worker's next wait returns spuriously once).
 * docs/ARCHITECTURE.md walks through the full interleaving argument;
 * docs/STEALING.md covers the selection policy on top.
 *
 * wait() may also return spuriously (EINTR, stale bump); callers
 * must re-scan for work and re-park, never assume work exists.
 */

#ifndef HERMES_RUNTIME_PARKING_LOT_HPP
#define HERMES_RUNTIME_PARKING_LOT_HPP

#include <atomic>
#include <cstdint>
#include <memory>

#if !defined(__linux__)
#include <condition_variable>
#include <mutex>
#endif

namespace hermes::runtime {

/** Per-worker wake epochs shared by every worker of a Runtime. */
class ParkingLot
{
  public:
    /** Epoch snapshot type; compared for identity only, so wrap-around
     * is harmless (an ABA needs 2^32 bumps of one worker's word
     * between its prepare() and wait(), and even then merely costs
     * one extra wakeup check). */
    using Epoch = uint32_t;

    /** @param num_workers number of per-worker wake words. */
    explicit ParkingLot(unsigned num_workers);

    ParkingLot(const ParkingLot &) = delete;
    ParkingLot &operator=(const ParkingLot &) = delete;

    /** Snapshot worker `w`'s epoch. Must precede the caller's
     * parked-publish and work re-check (see file comment). */
    Epoch prepare(unsigned w) const
    {
        return slots_[w].epoch.load(std::memory_order_seq_cst);
    }

    /**
     * Block worker `w` until its epoch moves past `expected`.
     * Returns immediately if it already has; may return spuriously.
     * Never consumes work — the caller re-checks the scheduler state
     * on every return.
     */
    void wait(unsigned w, Epoch expected);

    /** Bump worker `w`'s epoch and wake it (a producer published
     * work and selected `w` among the parked workers). */
    void notifyWorker(unsigned w);

    /** Bump every epoch and wake every waiter (shutdown). */
    void notifyAll();

  private:
    /** One wake word per worker, padded to its own cacheline so a
     * producer's bump never false-shares with a sibling's word. */
    struct alignas(64) Slot
    {
        std::atomic<uint32_t> epoch{0};
    };

    unsigned numWorkers_;
    std::unique_ptr<Slot[]> slots_;

#if !defined(__linux__)
    std::mutex mutex_;
    std::condition_variable cv_;
#endif
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_PARKING_LOT_HPP
