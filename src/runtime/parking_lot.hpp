/**
 * @file
 * Event-driven worker parking lot (futex on Linux, condvar fallback).
 *
 * A ParkingLot is a wake-epoch: a single 32-bit counter that producers
 * bump whenever runnable work appears for a parked thief. A thief that
 * wants to park follows the three-step sequence
 *
 *   1. e = prepare()            — snapshot the epoch
 *   2. publish "I am parked"    — seq_cst store/RMW, done by the caller
 *   3. re-check for work        — seq_cst loads, done by the caller
 *   4. wait(e)                  — block only while the epoch is still e
 *
 * and a producer follows
 *
 *   1. publish the work         — seq_cst store (deque tail / inject count)
 *   2. observe a parked thief   — seq_cst load of the parked count
 *   3. notifyOne()              — bump the epoch, wake one waiter
 *
 * The publish-then-recheck pairing is a Dekker handshake: both sides
 * write their flag (parked count / work state) before reading the
 * other's, all with sequentially consistent ordering, so at least one
 * side observes the other. If the thief sees the work it never blocks;
 * if the producer sees the thief it notifies, and wait() cannot miss
 * that notification because the kernel (futex) or the mutex (condvar
 * fallback) re-validates the epoch atomically against blocking: a bump
 * that lands before the thief is queued fails the epoch comparison and
 * wait() returns immediately. docs/ARCHITECTURE.md walks through the
 * full interleaving argument.
 *
 * wait() may also return spuriously (EINTR, stolen wakeup); callers
 * must re-scan for work and re-park, never assume work exists.
 */

#ifndef HERMES_RUNTIME_PARKING_LOT_HPP
#define HERMES_RUNTIME_PARKING_LOT_HPP

#include <atomic>
#include <cstdint>

#if !defined(__linux__)
#include <condition_variable>
#include <mutex>
#endif

namespace hermes::runtime {

/** One wake-epoch shared by every worker of a Runtime. */
class ParkingLot
{
  public:
    /** Epoch snapshot type; compared for identity only, so wrap-around
     * is harmless (an ABA needs 2^32 notifies between prepare() and
     * wait(), and even then merely costs one extra wakeup check). */
    using Epoch = uint32_t;

    ParkingLot() = default;
    ParkingLot(const ParkingLot &) = delete;
    ParkingLot &operator=(const ParkingLot &) = delete;

    /** Snapshot the epoch. Must precede the caller's parked-publish
     * and work re-check (see file comment). */
    Epoch prepare() const
    {
        return epoch_.load(std::memory_order_seq_cst);
    }

    /**
     * Block until the epoch moves past `expected`. Returns immediately
     * if it already has; may return spuriously. Never consumes work —
     * the caller re-checks the scheduler state on every return.
     */
    void wait(Epoch expected);

    /** Bump the epoch and wake one waiter (empty→non-empty deque
     * transition or external inject observed a parked thief). */
    void notifyOne();

    /** Bump the epoch and wake every waiter (shutdown). */
    void notifyAll();

  private:
    std::atomic<uint32_t> epoch_{0};

#if !defined(__linux__)
    std::mutex mutex_;
    std::condition_variable cv_;
#endif
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_PARKING_LOT_HPP
