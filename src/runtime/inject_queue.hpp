/**
 * @file
 * The external-submission (inject) path: a lock-free bounded MPMC
 * ring per topology domain, with a mutex-guarded spillover so
 * submission never drops a task or blocks unboundedly.
 *
 * External producers — threads that are not workers of the target
 * runtime — used to funnel every root task through one mutex-guarded
 * deque, the last lock on the task entry path. The replacement is a
 * Vyukov-style bounded MPMC ring (per-cell sequence numbers: a cell
 * whose sequence equals the enqueue position is free, one past the
 * dequeue position is full), sharded per topology domain so
 * producers mapped to different domains never contend on the same
 * head/tail cachelines and consumers can drain their own domain's
 * shard first — the same-domain-first order the stealing policy
 * already applies to victims (docs/STEALING.md). When a shard's ring
 * is full the task spills to a mutex-guarded deque instead of
 * failing: `push` always succeeds, the mutex is simply no longer on
 * the fast path. The scheduler-facing protocol (who publishes the
 * Dekker handshake word, why a parked worker cannot sleep through a
 * submission) is documented in docs/ARCHITECTURE.md; this file only
 * stores and hands back tasks.
 */

#ifndef HERMES_RUNTIME_INJECT_QUEUE_HPP
#define HERMES_RUNTIME_INJECT_QUEUE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/task.hpp"

namespace hermes::runtime {

/**
 * External-submission knobs (part of RuntimeConfig).
 *
 * Defaults enable the lock-free sharded path. `useLockFreeInject =
 * false` replays the legacy single mutex-guarded deque — the A/B
 * baseline `bench_micro_inject` measures against.
 */
struct InjectPolicy
{
    /**
     * Route external submissions through the lock-free sharded MPMC
     * ring (fast path) with mutex spillover. `false` replays the
     * legacy mutex-guarded global deque bit-for-bit: same ordering,
     * same wake protocol, zero ring traffic — the `injectFastPath`
     * and `injectSpill` counters stay 0.
     */
    bool useLockFreeInject = true;

    /**
     * One ring shard per topology domain (`platform::DomainMap`), so
     * producers assigned to different domains never touch the same
     * enqueue cacheline and consumers drain their own domain's shard
     * first. `false` collapses the queue to a single shard — every
     * producer and consumer shares one ring.
     */
    bool shardPerDomain = true;

    /**
     * Per-shard ring capacity in tasks (rounded up to 2^k, >= 2).
     * Submissions beyond a full shard spill to the mutex-guarded
     * overflow deque; `RuntimeStats::injectSpill` counts how often
     * the capacity was too small for the offered load.
     */
    size_t shardCapacity = 1 << 10;

    /**
     * Opportunistic spill drain-back: after a pop frees ring room,
     * move up to this many spilled tasks back into that ring, so
     * sustained overflow regains (rough) FIFO instead of stranding
     * spilled tasks behind a constantly-refilling ring. `0` disables
     * the drain-back, replaying the rings-then-spill drain order
     * verbatim. `RuntimeStats::injectDrainBack` counts moved tasks.
     */
    unsigned drainBackBatch = 8;
};

/**
 * Bounded lock-free MPMC ring with per-cell sequence numbers
 * (Vyukov's algorithm).
 *
 * Each cell carries a sequence word. A producer may claim enqueue
 * position `p` only while `cell[p % cap].seq == p` (the cell is
 * free); after moving the task in it publishes `seq = p + 1`. A
 * consumer may claim dequeue position `p` only while `seq == p + 1`
 * (the cell is full); after moving the task out it publishes
 * `seq = p + cap`, freeing the cell for the producer one lap ahead.
 * Claims race on the position counters with weak CAS; the sequence
 * check makes a claimed cell private to its claimant, so the task
 * move itself is uncontended. Both operations are non-blocking:
 * `tryPush` fails on a full ring, `tryPop` on an empty one, and
 * neither spins on a stalled peer.
 */
class InjectRing
{
  public:
    /** @param capacity ring capacity in tasks; rounded up to 2^k,
     *        minimum 2. */
    explicit InjectRing(size_t capacity);

    InjectRing(const InjectRing &) = delete;
    InjectRing &operator=(const InjectRing &) = delete;

    /**
     * Enqueue at the tail.
     * @param t consumed only on success; intact when the ring is
     *        full so the caller can spill it
     * @return false if the ring is full
     */
    bool tryPush(Task &&t);

    /**
     * Dequeue from the head (FIFO).
     * @param out receives the task on success
     * @return false if the ring is empty
     */
    bool tryPop(Task &out);

    size_t capacity() const { return mask_ + 1; }

  private:
    struct Cell
    {
        std::atomic<size_t> seq{0};
        Task task;
    };

    std::unique_ptr<Cell[]> cells_;
    size_t mask_;
    /** Producer and consumer claim words on separate cachelines so
     * push traffic never invalidates the pop side and vice versa. */
    alignas(64) std::atomic<size_t> enqueuePos_{0};
    alignas(64) std::atomic<size_t> dequeuePos_{0};
};

/**
 * The sharded inject queue: one InjectRing per topology domain plus
 * a mutex-guarded spillover deque.
 *
 * Producers carry a shard hint (a worker's domain, or a stable
 * per-thread token for external threads — see producerShardHint());
 * consumers pass their own domain so the drain order is
 * same-domain-first, mirroring the stealing policy's victim order.
 * The queue stores tasks only — the Dekker publish word
 * (`Runtime::injectPending_`), wake notification, and all counters
 * stay in the scheduler so the lock-free and legacy paths share one
 * parking proof (docs/ARCHITECTURE.md).
 */
class InjectQueue
{
  public:
    /** Where a push landed. */
    enum class PushPath
    {
        Ring, ///< lock-free fast path (the shard had room)
        Spill ///< mutex-guarded overflow (the shard was full)
    };

    /** Where a pop was satisfied from. */
    enum class PopSource
    {
        None,           ///< nothing claimable anywhere
        PreferredShard, ///< the consumer's own-domain shard
        OtherShard,     ///< another domain's shard
        Spill           ///< the overflow deque
    };

    /**
     * @param policy capacity and sharding knobs
     * @param num_domains shard count when `policy.shardPerDomain`
     *        (>= 1 is enforced); ignored otherwise
     */
    InjectQueue(const InjectPolicy &policy, unsigned num_domains);

    InjectQueue(const InjectQueue &) = delete;
    InjectQueue &operator=(const InjectQueue &) = delete;

    /**
     * Enqueue `t`, never failing and never blocking beyond the
     * spillover mutex (taken only when the hinted shard's ring is
     * full).
     * @param t always consumed
     * @param shard_hint producer placement token, reduced modulo the
     *        shard count (a domain id or producerShardHint())
     * @return which path the task landed on
     */
    PushPath push(Task &&t, unsigned shard_hint);

    /**
     * Dequeue one task: the preferred shard first, then the other
     * shards in ring order, then the spillover. A `None` return does
     * not prove the queue is empty — a concurrent producer may be
     * between its claim and its publish — so callers gate retries on
     * the scheduler's pending counter, not on this result.
     * @param out receives the task on success
     * @param preferred_shard the consumer's domain (reduced modulo
     *        the shard count)
     * @return where the task came from, or None
     */
    PopSource tryPop(Task &out, unsigned preferred_shard);

    unsigned numShards() const
    {
        return static_cast<unsigned>(rings_.size());
    }

    /** Racy spillover depth estimate (exact only when quiescent). */
    size_t spillSizeApprox() const
    {
        return spillSize_.load(std::memory_order_relaxed);
    }

    /** Total spilled tasks moved back into a ring by the
     * opportunistic drain-back (see InjectPolicy::drainBackBatch). */
    uint64_t
    drainBacks() const
    {
        return drainBacks_.load(std::memory_order_relaxed);
    }

  private:
    /** Move up to `drainBackBatch_` spilled tasks into `ring`
     * (oldest first), stopping when either runs out of room/tasks.
     * Called right after a pop freed at least one slot. */
    void drainBackInto(InjectRing &ring);

    std::vector<std::unique_ptr<InjectRing>> rings_;
    unsigned drainBackBatch_;
    std::mutex spillMutex_;
    std::deque<Task> spill_;
    /** Lets tryPop skip the spill mutex while the overflow is empty
     * (the common case once shardCapacity fits the offered load). */
    std::atomic<size_t> spillSize_{0};
    std::atomic<uint64_t> drainBacks_{0};
};

/**
 * Stable per-thread shard hint for producers that have no domain
 * (external submitters): threads are numbered in first-submission
 * order, spreading concurrent producers round-robin across shards so
 * two external threads contend on the same enqueue cacheline only
 * when there are more producers than shards.
 */
unsigned producerShardHint();

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_INJECT_QUEUE_HPP
