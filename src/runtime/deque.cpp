#include "runtime/deque.hpp"

#include <bit>
#include <cstring>

#include "util/assert.hpp"

namespace hermes::runtime {

WsDeque::WsDeque(size_t capacity_pow2, DequePolicy policy)
    : impl_(policy.impl)
{
    const size_t cap =
        std::bit_ceil(std::max<size_t>(2, capacity_pow2));
    // Slot words are left uninitialized: only slots in [head, tail)
    // are ever read, and each was stored by a push first.
    slots_ =
        std::make_unique<std::atomic<uint64_t>[]>(cap * kSlotWords);
    mask_ = cap - 1;
}

WsDeque::~WsDeque()
{
    // Adopt-and-drop whatever is still queued so boxed closures are
    // released. Destruction is single-threaded by contract.
    const int64_t t = tail_.load(std::memory_order_relaxed);
    for (int64_t i = head_.load(std::memory_order_relaxed); i < t;
         ++i)
        Task::adopt(loadSlot(i));
}

void
WsDeque::storeSlot(int64_t index, const Task::Repr &repr)
{
    uint64_t words[kSlotWords];
    std::memcpy(words, &repr, sizeof(repr));
    std::atomic<uint64_t> *slot =
        &slots_[(static_cast<size_t>(index) & mask_) * kSlotWords];
    for (size_t w = 0; w < kSlotWords; ++w)
        slot[w].store(words[w], std::memory_order_relaxed);
}

Task::Repr
WsDeque::loadSlot(int64_t index) const
{
    uint64_t words[kSlotWords];
    const std::atomic<uint64_t> *slot =
        &slots_[(static_cast<size_t>(index) & mask_) * kSlotWords];
    for (size_t w = 0; w < kSlotWords; ++w)
        words[w] = slot[w].load(std::memory_order_relaxed);
    Task::Repr repr;
    std::memcpy(&repr, words, sizeof(repr));
    return repr;
}

bool
WsDeque::push(Task &&t, size_t &size_after)
{
    const int64_t tail = tail_.load(std::memory_order_relaxed);
    // One slot of the ring is sacrificed: under THE an in-flight
    // steal claims the head index before moving the task out, so the
    // owner must never wrap onto the slot one lap behind the head;
    // under Chase-Lev the same margin means any wrap-around
    // overwrite implies the head already passed the slot, so a thief
    // whose pre-CAS copy the overwrite tore is guaranteed to fail
    // its claiming CAS and discard the bytes. (The acquire head read
    // can only lag the true head, which makes the full check
    // conservative.)
    const int64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= static_cast<int64_t>(capacity()) - 1)
        return false; // full: caller executes inline
    storeSlot(tail, t.release());
    // Publishing tail+1 makes the slot visible to thieves. seq_cst
    // rather than release: this store is the producer half of the
    // parking Dekker handshake, and the head read below must be
    // ordered after it so a steal that a parking thief observed
    // (making the deque look empty to it) is also observed here —
    // reporting size_after == 1 and triggering the wake
    // (docs/ARCHITECTURE.md).
    tail_.store(tail + 1, std::memory_order_seq_cst);
    size_after = static_cast<size_t>(
        tail + 1 - head_.load(std::memory_order_seq_cst));
    return true;
}

bool
WsDeque::pop(Task &out, size_t &size_after)
{
    return impl_ == DequeImpl::ChaseLev ? popChaseLev(out, size_after)
                                        : popThe(out, size_after);
}

bool
WsDeque::popChaseLev(Task &out, size_t &size_after)
{
    // Empty fast path: the owner's own tail is exact, and a stale
    // (lagging) head can only overestimate the size — a truly empty
    // deque is never misread as non-empty the other way. This spares
    // the idle loop's per-iteration pop the retract/restore pair of
    // seq_cst stores below.
    const int64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_relaxed) <= 0)
        return false;

    // Retract the tail, then look at the head. seq_cst on both: the
    // retraction and a thief's head/tail reads resolve through the
    // single total order S — if the thief's tail read is ordered
    // after the retraction it sees the smaller tail and backs off
    // the retracted slot; if before, its claiming CAS and our
    // own-or-CAS take below race on head_ and exactly one wins
    // (docs/STEALING.md, "The deque").
    const int64_t t = tail - 1;
    tail_.store(t, std::memory_order_seq_cst);
    int64_t h = head_.load(std::memory_order_seq_cst);
    if (h > t) {
        // Thieves drained everything between the fast path and the
        // retraction.
        tail_.store(t + 1, std::memory_order_relaxed);
        return false;
    }
    if (h == t) {
        // Last task: one CAS on head_ against the thieves — the
        // proven single-arbiter of the tug-of-war. Win or lose,
        // head ends at t+1, so restore tail to t+1 (canonical
        // empty).
        const bool won = head_.compare_exchange_strong(
            h, h + 1, std::memory_order_seq_cst);
        tail_.store(t + 1, std::memory_order_relaxed);
        if (!won) {
            popCasLosses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        out = Task::adopt(loadSlot(t));
        size_after = 0;
        return true;
    }
    // h < t: the slot is ours without arbitration — no thief can
    // claim index t while head_ < t, and head_ only grows.
    out = Task::adopt(loadSlot(t));
    size_after = static_cast<size_t>(t - h);
    return true;
}

bool
WsDeque::popThe(Task &out, size_t &size_after)
{
    // Optimistic THE pop: retract the tail first, then look at the
    // head. If the retracted slot might also be a thief's target
    // (head caught up), restore and retry once under the lock, where
    // thieves cannot move the head concurrently.
    int64_t t = tail_.load() - 1;
    tail_.store(t);
    int64_t h = head_.load();
    if (h > t) {
        tail_.store(t + 1);
        std::lock_guard<std::mutex> guard(lock_);
        t = tail_.load() - 1;
        tail_.store(t);
        h = head_.load();
        if (h > t) {
            // Plain-empty and lost-the-last-task are not
            // distinguishable here without extra state, so the THE
            // replay leaves popCasLosses_ at 0 (see deque.hpp).
            tail_.store(t + 1);
            return false;
        }
    }
    out = Task::adopt(loadSlot(t));
    size_after = static_cast<size_t>(t - head_.load());
    return true;
}

bool
WsDeque::steal(Task &out, size_t &size_after)
{
    return impl_ == DequeImpl::ChaseLev
        ? stealChaseLev(out, size_after)
        : stealThe(out, size_after);
}

bool
WsDeque::stealChaseLev(Task &out, size_t &size_after)
{
    // Read head, then tail, both seq_cst: the S-order against the
    // owner's seq_cst retraction is what guarantees that if the
    // owner is popping our target slot we either see the retracted
    // tail here (and report empty) or the race reaches the head CAS
    // below and exactly one side wins.
    int64_t h = head_.load(std::memory_order_seq_cst);
    const int64_t t = tail_.load(std::memory_order_seq_cst);
    if (t - h <= 0)
        return false; // empty
    // Copy before claiming: the bytes are adopted only if the CAS
    // wins. If the owner wrapped onto the slot meanwhile (possible
    // only after head passed h), the copy may be torn — and the CAS
    // is then guaranteed to fail, discarding it. The slot words are
    // relaxed atomics, so the racing read is defined.
    const Task::Repr repr = loadSlot(h);
    if (!head_.compare_exchange_strong(h, h + 1,
                                       std::memory_order_seq_cst)) {
        // Another thief, or the owner's last-task pop, won the slot.
        stealCasRetries_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    out = Task::adopt(repr);
    const int64_t rest = t - (h + 1);
    size_after = rest > 0 ? static_cast<size_t>(rest) : 0;
    return true;
}

bool
WsDeque::stealThe(Task &out, size_t &size_after)
{
    std::lock_guard<std::mutex> guard(lock_);
    const int64_t h = head_.load();
    if (h >= tail_.load())
        return false; // plain empty: nothing to claim
    // Claim the head slot, then verify the tail has not retracted
    // past it (a racing pop taking the same last task). The claim-
    // then-check order mirrors Algorithm 2.4.
    head_.store(h + 1);
    const int64_t t = tail_.load();
    if (h + 1 > t) {
        head_.store(h);
        stealCasRetries_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    out = Task::adopt(loadSlot(h));
    size_after = static_cast<size_t>(t - (h + 1));
    return true;
}

size_t
WsDeque::stealHalf(std::vector<Task> &out, size_t &size_after)
{
    return impl_ == DequeImpl::ChaseLev
        ? stealHalfChaseLev(out, size_after)
        : stealHalfThe(out, size_after);
}

size_t
WsDeque::stealHalfChaseLev(std::vector<Task> &out, size_t &size_after)
{
    size_after = 0;
    int64_t h = head_.load(std::memory_order_seq_cst);
    int64_t t = tail_.load(std::memory_order_seq_cst);
    const int64_t n = t - h;
    if (n <= 0)
        return 0;
    // Take ceil(n/2), leaving the owner the more immediate half. A
    // singleton (n == 1) goes through exactly one single-steal step,
    // confining the last-task race to the proven CAS arbitration.
    //
    // Each iteration is the full single-steal protocol — re-read
    // head and tail (seq_cst), copy, claim with one CAS — NOT one
    // bulk CAS of head from h to h+k after copying k slots. The bulk
    // claim would be unsound: the owner's pop frees slots from the
    // tail side without writing head_, so k-1 pops could land inside
    // [h, h+k) while the bulk CAS still succeeds, delivering those
    // tasks twice (this is precisely the race the "work-stealing
    // with multiplicity" literature relaxes exactly-once to permit;
    // we keep exactly-once and pay one CAS per task instead — still
    // no lock, and the hunt, wake chaining, and buffer management
    // are amortized over the batch).
    const int64_t want = n == 1 ? 1 : (n + 1) / 2;
    out.reserve(out.size() + static_cast<size_t>(want));
    size_t got = 0;
    for (int64_t i = 0; i < want; ++i) {
        if (i > 0) {
            h = head_.load(std::memory_order_seq_cst);
            t = tail_.load(std::memory_order_seq_cst);
            if (t - h <= 0)
                break;
        }
        const Task::Repr repr = loadSlot(h);
        if (!head_.compare_exchange_strong(
                h, h + 1, std::memory_order_seq_cst)) {
            // Another thief or the owner's last-task pop interleaved;
            // keep what was already claimed.
            stealCasRetries_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        out.push_back(Task::adopt(repr));
        ++got;
        ++h;
    }
    const int64_t remaining = tail_.load(std::memory_order_relaxed)
        - head_.load(std::memory_order_relaxed);
    size_after = remaining > 0 ? static_cast<size_t>(remaining) : 0;
    return got;
}

size_t
WsDeque::stealHalfThe(std::vector<Task> &out, size_t &size_after)
{
    std::lock_guard<std::mutex> guard(lock_);
    const int64_t h0 = head_.load();
    const int64_t t0 = tail_.load();
    const int64_t n = t0 - h0;
    size_after = 0;
    if (n <= 0)
        return 0;
    // Take ceil(n/2): leave the owner the more immediate half. Each
    // iteration is one full single-steal protocol step — claim, check
    // the tail for a racing pop, move the task out — so at most one
    // claimed slot is ever pending and the ring's sacrificial vacant
    // slot (see push()) keeps the owner from wrapping onto it. Other
    // thieves are excluded by the lock held across the whole grab.
    const int64_t want = (n + 1) / 2;
    // Grow the landing buffer up front: a push_back reallocation
    // inside the loop would stretch the critical section by a heap
    // allocation while the owner and other thieves wait on lock_.
    out.reserve(out.size() + static_cast<size_t>(want));
    size_t got = 0;
    for (int64_t i = 0; i < want; ++i) {
        const int64_t h = head_.load();
        head_.store(h + 1);
        const int64_t t = tail_.load();
        if (h + 1 > t) {
            // The owner popped past us mid-grab; undo the claim and
            // keep what was already moved out.
            head_.store(h);
            stealCasRetries_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        out.push_back(Task::adopt(loadSlot(h)));
        ++got;
    }
    const int64_t remaining = tail_.load() - head_.load();
    size_after = remaining > 0 ? static_cast<size_t>(remaining) : 0;
    return got;
}

size_t
WsDeque::size() const
{
    const int64_t d = tail_.load() - head_.load();
    return d > 0 ? static_cast<size_t>(d) : 0;
}

} // namespace hermes::runtime
