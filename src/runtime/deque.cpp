#include "runtime/deque.hpp"

#include <bit>

#include "util/assert.hpp"

namespace hermes::runtime {

WsDeque::WsDeque(size_t capacity_pow2)
{
    size_t cap = std::bit_ceil(std::max<size_t>(2, capacity_pow2));
    buffer_.resize(cap);
    mask_ = cap - 1;
}

bool
WsDeque::push(Task &&t, size_t &size_after)
{
    const int64_t tail = tail_.load();
    const int64_t head = head_.load();
    // One slot of the ring is sacrificed: an in-flight steal claims
    // the head index before moving the task out of its slot, so the
    // owner must never wrap onto the slot one lap behind the head.
    // (The head read here can only lag the true head, which makes
    // this check conservative.)
    if (tail - head >= static_cast<int64_t>(buffer_.size()) - 1)
        return false; // full: caller executes inline
    slot(tail) = std::move(t);
    // Publishing tail+1 makes the slot visible to thieves; seq_cst
    // keeps the store ordered after the slot write for them.
    tail_.store(tail + 1);
    size_after = static_cast<size_t>(tail + 1 - head_.load());
    return true;
}

bool
WsDeque::pop(Task &out, size_t &size_after)
{
    // Optimistic THE pop: retract the tail first, then look at the
    // head. If the retracted slot might also be a thief's target
    // (head caught up), restore and retry once under the lock, where
    // thieves cannot move the head concurrently.
    int64_t t = tail_.load() - 1;
    tail_.store(t);
    int64_t h = head_.load();
    if (h > t) {
        tail_.store(t + 1);
        std::lock_guard<std::mutex> guard(lock_);
        t = tail_.load() - 1;
        tail_.store(t);
        h = head_.load();
        if (h > t) {
            tail_.store(t + 1);
            return false;
        }
    }
    out = std::move(slot(t));
    size_after = static_cast<size_t>(t - head_.load());
    return true;
}

bool
WsDeque::steal(Task &out, size_t &size_after)
{
    std::lock_guard<std::mutex> guard(lock_);
    // Claim the head slot, then verify the tail has not retracted
    // past it (a racing pop taking the same last task). The claim-
    // then-check order mirrors Algorithm 2.4.
    const int64_t h = head_.load();
    head_.store(h + 1);
    const int64_t t = tail_.load();
    if (h + 1 > t) {
        head_.store(h);
        return false;
    }
    out = std::move(slot(h));
    size_after = static_cast<size_t>(t - (h + 1));
    return true;
}

size_t
WsDeque::stealHalf(std::vector<Task> &out, size_t &size_after)
{
    std::lock_guard<std::mutex> guard(lock_);
    const int64_t h0 = head_.load();
    const int64_t t0 = tail_.load();
    const int64_t n = t0 - h0;
    size_after = 0;
    if (n <= 0)
        return 0;
    // Take ceil(n/2): leave the owner the more immediate half. Each
    // iteration is one full single-steal protocol step — claim, check
    // the tail for a racing pop, move the task out — so at most one
    // claimed slot is ever pending and the ring's sacrificial vacant
    // slot (see push()) keeps the owner from wrapping onto it. Other
    // thieves are excluded by the lock held across the whole grab.
    const int64_t want = (n + 1) / 2;
    // Grow the landing buffer up front: a push_back reallocation
    // inside the loop would stretch the critical section by a heap
    // allocation while the owner and other thieves wait on lock_.
    out.reserve(out.size() + static_cast<size_t>(want));
    size_t got = 0;
    for (int64_t i = 0; i < want; ++i) {
        const int64_t h = head_.load();
        head_.store(h + 1);
        const int64_t t = tail_.load();
        if (h + 1 > t) {
            // The owner popped past us mid-grab; undo the claim and
            // keep what was already moved out.
            head_.store(h);
            break;
        }
        out.push_back(std::move(slot(h)));
        ++got;
    }
    const int64_t remaining = tail_.load() - head_.load();
    size_after = remaining > 0 ? static_cast<size_t>(remaining) : 0;
    return got;
}

size_t
WsDeque::size() const
{
    const int64_t d = tail_.load() - head_.load();
    return d > 0 ? static_cast<size_t>(d) : 0;
}

} // namespace hermes::runtime
