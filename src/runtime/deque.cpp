#include "runtime/deque.hpp"

#include <bit>

#include "util/assert.hpp"

namespace hermes::runtime {

WsDeque::WsDeque(size_t capacity_pow2)
{
    size_t cap = std::bit_ceil(std::max<size_t>(2, capacity_pow2));
    buffer_.resize(cap);
    mask_ = cap - 1;
}

bool
WsDeque::push(Task &&t, size_t &size_after)
{
    const int64_t tail = tail_.load();
    const int64_t head = head_.load();
    // One slot of the ring is sacrificed: an in-flight steal claims
    // the head index before moving the task out of its slot, so the
    // owner must never wrap onto the slot one lap behind the head.
    // (The head read here can only lag the true head, which makes
    // this check conservative.)
    if (tail - head >= static_cast<int64_t>(buffer_.size()) - 1)
        return false; // full: caller executes inline
    slot(tail) = std::move(t);
    // Publishing tail+1 makes the slot visible to thieves; seq_cst
    // keeps the store ordered after the slot write for them.
    tail_.store(tail + 1);
    size_after = static_cast<size_t>(tail + 1 - head_.load());
    return true;
}

bool
WsDeque::pop(Task &out, size_t &size_after)
{
    // Optimistic THE pop: retract the tail first, then look at the
    // head. If the retracted slot might also be a thief's target
    // (head caught up), restore and retry once under the lock, where
    // thieves cannot move the head concurrently.
    int64_t t = tail_.load() - 1;
    tail_.store(t);
    int64_t h = head_.load();
    if (h > t) {
        tail_.store(t + 1);
        std::lock_guard<std::mutex> guard(lock_);
        t = tail_.load() - 1;
        tail_.store(t);
        h = head_.load();
        if (h > t) {
            tail_.store(t + 1);
            return false;
        }
    }
    out = std::move(slot(t));
    size_after = static_cast<size_t>(t - head_.load());
    return true;
}

bool
WsDeque::steal(Task &out, size_t &size_after)
{
    std::lock_guard<std::mutex> guard(lock_);
    // Claim the head slot, then verify the tail has not retracted
    // past it (a racing pop taking the same last task). The claim-
    // then-check order mirrors Algorithm 2.4.
    const int64_t h = head_.load();
    head_.store(h + 1);
    const int64_t t = tail_.load();
    if (h + 1 > t) {
        head_.store(h);
        return false;
    }
    out = std::move(slot(h));
    size_after = static_cast<size_t>(t - (h + 1));
    return true;
}

size_t
WsDeque::size() const
{
    const int64_t d = tail_.load() - head_.load();
    return d > 0 ? static_cast<size_t>(d) : 0;
}

} // namespace hermes::runtime
