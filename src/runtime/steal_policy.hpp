/**
 * @file
 * The stealing-policy layer: what a thief steals, from whom, and in
 * what order (docs/STEALING.md).
 *
 * Policy is split from mechanism. The mechanism — WsDeque's
 * steal/stealHalf operations and the ParkingLot's per-worker wake
 * words — lives in deque.{hpp,cpp} and parking_lot.{hpp,cpp}; this
 * header holds the knobs (StealPolicy) and the pure victim-ordering
 * function the scheduler's hunt follows, factored out so tests can
 * assert probe order without running threads.
 */

#ifndef HERMES_RUNTIME_STEAL_POLICY_HPP
#define HERMES_RUNTIME_STEAL_POLICY_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "core/worker_id.hpp"
#include "platform/topology.hpp"
#include "util/rng.hpp"

namespace hermes::runtime {

/**
 * Stealing-policy knobs (part of RuntimeConfig).
 *
 * Defaults enable both paper-adjacent optimizations: steal-half bulk
 * transfers (amortize hunt rounds over bursty DAGs) and one
 * same-domain victim pass before the global random ring (Suksompong
 * et al.'s localized work stealing). Both degrade to the classic
 * uniform single-steal policy on single-domain hardware or when
 * switched off.
 */
struct StealPolicy
{
    /**
     * Bulk stealing: a successful grab takes ceil(n/2) of the
     * victim's n queued tasks (WsDeque::stealHalf); the thief runs
     * one and stocks its own deque with the rest, chaining wakes for
     * the surplus. Off = classic one-task Chase-Lev-style steal.
     */
    bool stealHalf = true;

    /**
     * Same-domain victim passes per hunt before falling back to the
     * global random ring. 0 reproduces the uniform random ring
     * bitwise-identically under a fixed seed (the locality pass
     * consumes no RNG draws when disabled). Values > 1 re-probe the
     * local neighbourhood, which pays off when same-domain victims
     * refill quickly (deep fork-join bursts).
     */
    unsigned localityRounds = 1;

    /**
     * Worker → domain override for tests and simulation. When unset
     * the runtime derives the map from the platform topology and the
     * planned worker → core placement, degrading to one domain on
     * unknown hardware. Must cover exactly numWorkers workers when
     * set.
     */
    std::optional<platform::DomainMap> domainMap{};

    /**
     * Adaptive locality (default off): while the thief's recent
     * steals keep landing on same-domain victims — the windowed
     * `localHits / (localHits + remoteHits)` ratio is at or above
     * `adaptiveLocalityThreshold` — a hunt probes only the locality
     * passes and skips the global ring; it escalates back to the
     * global ring as soon as the ratio drops below the threshold, a
     * hunt fails outright, or there is no hit history yet. A failed
     * hunt forcing escalation is the liveness guard: work sitting
     * only on remote victims is found on the very next hunt, so the
     * adaptive policy can trim remote probes but never starve
     * (docs/STEALING.md). Ignored when `localityRounds == 0` or the
     * domain map gives the thief no strict local subset. A skipped
     * global pass still consumes its RNG draw (draw-and-discard in
     * appendVictimOrder), so adaptive hunts stay on the same victim
     * stream as the fixed-rounds default and the two policies are
     * bitwise-replayable against each other under a shared seed.
     */
    bool adaptiveLocality = false;

    /** Escalation threshold on the recent local-hit ratio (see
     * `adaptiveLocality`). */
    double adaptiveLocalityThreshold = 0.5;

    /** Recency window: once a thief's recent local+remote hit count
     * reaches this, both counts are halved, so the ratio tracks the
     * current DAG phase instead of the whole run. */
    unsigned adaptiveLocalityWindow = 64;
};

/**
 * Pure escalation predicate of the adaptive-locality policy: should
 * this hunt append the global fallback ring after its locality
 * passes?
 *
 * Always true when `policy.adaptiveLocality` is off, when the
 * previous hunt failed (the liveness guard), or when there is no hit
 * history; otherwise true exactly while the recent local-hit ratio
 * sits below `policy.adaptiveLocalityThreshold`. The caller owns the
 * recency windowing of the two counters (the runtime halves both at
 * `adaptiveLocalityWindow`).
 */
bool includeGlobalPass(const StealPolicy &policy,
                       uint64_t recent_local_hits,
                       uint64_t recent_remote_hits,
                       bool last_hunt_failed);

/**
 * Append one hunt's victim probe order to `out` (cleared first).
 *
 * Order: `locality_rounds` passes over `local_peers` (each pass from
 * a random start within the peer list), then the global ring — every
 * worker except `self` once, from a random start. The global start
 * is drawn *after* the locality passes, so with `locality_rounds ==
 * 0` the function consumes exactly one RNG draw and reproduces the
 * legacy uniform ring bitwise-identically. A locality pass that
 * would cover every other worker anyway (single-domain maps, where
 * `local_peers` is all of them) is skipped for the same reason — it
 * adds no information and would desynchronize the RNG stream.
 *
 * @param rng per-thief random stream (advanced by 1 draw per
 *        emitted pass)
 * @param self the hunting worker; never emitted
 * @param num_workers dense worker-id space size
 * @param local_peers same-domain workers other than self, ascending
 *        (DomainMap::peersOf)
 * @param locality_rounds same-domain passes before the global ring
 * @param out receives the probe order; reused hunt to hunt
 * @param include_global emit the global fallback ring (default).
 *        `false` — an adaptive-locality hunt that stays local —
 *        still consumes the ring's RNG draw and discards it, so the
 *        stream stays aligned with full hunts; the order can be
 *        empty when the locality pass is skipped too, which the
 *        caller treats as a failed hunt, forcing the next hunt
 *        global (includeGlobalPass)
 */
void appendVictimOrder(util::Rng &rng, core::WorkerId self,
                       unsigned num_workers,
                       const std::vector<core::WorkerId> &local_peers,
                       unsigned locality_rounds,
                       std::vector<core::WorkerId> &out,
                       bool include_global = true);

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_STEAL_POLICY_HPP
