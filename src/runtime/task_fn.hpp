/**
 * @file
 * TaskFn — the allocation-free closure type of the spawn/steal hot
 * path.
 *
 * Every spawn used to heap-allocate: `Task::body` was a
 * `std::function`, whose small-buffer rules are implementation-
 * defined and which is never trivially relocatable, so each spawn
 * paid an allocator round-trip and each deque transfer a virtual
 * move. TaskFn replaces it with a fixed 64-byte inline buffer plus a
 * two-entry trampoline table (invoke/destroy):
 *
 *  - Callables that are **small (≤ 64 bytes, ≤ 16-aligned) and
 *    trivially copyable** — every spawn lambda the runtime itself
 *    creates captures a handful of references and scalars, so this
 *    is the common case (`static_assert`ed in parallel.hpp) — are
 *    constructed directly in the inline buffer. No allocation, and
 *    the destroy trampoline is null (trivially copyable implies
 *    trivially destructible).
 *  - Anything else is **boxed**: the buffer holds one owning pointer
 *    to a heap copy, and the trampolines forward through it.
 *
 * Either way the *representation* (`TaskFn::Repr`) is trivially
 * copyable — raw bytes of a trivially-copyable callable, or a
 * pointer — which makes a TaskFn **trivially relocatable by
 * construction**: moving it is a byte copy plus emptying the source,
 * and `release()`/`adopt()` expose exactly that transfer for
 * containers that store tasks as raw words (the lock-free deque's
 * ring copies slots with relaxed per-word atomic accesses, see
 * deque.hpp). This relocatability contract is what lets a thief copy
 * a slot *before* its claiming CAS and discard the bytes on failure
 * without ever running a constructor or destructor on them.
 */

#ifndef HERMES_RUNTIME_TASK_FN_HPP
#define HERMES_RUNTIME_TASK_FN_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hermes::runtime {

/** Move-only, trivially-relocatable `void()` closure with 64 bytes
 * of inline storage and a boxed-heap fallback. */
class TaskFn
{
  private:
    /** Type-erased operations; destroy is null when the payload is
     * trivially destructible (the inline case). */
    struct Ops
    {
        void (*invoke)(void *);
        void (*destroy)(void *);
    };

  public:
    /** Inline payload budget. Sized so the runtime's own spawn
     * lambdas (up to ~7 captured words, see parallel.hpp) stay
     * allocation-free while a Task::Repr remains a small flat slot
     * for the deque ring. */
    static constexpr size_t kInlineBytes = 64;
    static constexpr size_t kInlineAlign = 16;

    /**
     * The trivially-copyable transfer representation: the payload
     * bytes plus the trampoline table. Copying a Repr *relocates*
     * the closure — exactly one of the copies may be adopted, and
     * the source TaskFn must be treated as empty afterwards
     * (`release()` enforces that).
     */
    struct Repr
    {
        alignas(kInlineAlign) unsigned char storage[kInlineBytes];
        const Ops *ops;
    };

    /** Whether callable `F` is stored inline (no allocation on
     * spawn). Requires trivial copyability: the deque relocates
     * payloads as raw bytes. */
    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= kInlineBytes && alignof(F) <= kInlineAlign
        && std::is_trivially_copyable_v<F>;

    TaskFn() noexcept { repr_.ops = nullptr; }

    /** Wrap any `void()`-invocable callable; boxed on the heap only
     * when it is oversized, over-aligned, or not trivially
     * copyable. */
    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, TaskFn>
                  && std::is_invocable_v<D &>>>
    TaskFn(F &&f) // NOLINT: implicit by design (spawn sites)
    {
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void *>(repr_.storage))
                D(std::forward<F>(f));
            repr_.ops = &inlineOps<D>;
        } else {
            ::new (static_cast<void *>(repr_.storage))
                D *(new D(std::forward<F>(f)));
            repr_.ops = &boxedOps<D>;
        }
    }

    TaskFn(TaskFn &&other) noexcept : repr_(other.repr_)
    {
        other.repr_.ops = nullptr;
    }

    TaskFn &
    operator=(TaskFn &&other) noexcept
    {
        if (this != &other) {
            destroyPayload();
            repr_ = other.repr_;
            other.repr_.ops = nullptr;
        }
        return *this;
    }

    TaskFn(const TaskFn &) = delete;
    TaskFn &operator=(const TaskFn &) = delete;

    ~TaskFn() { destroyPayload(); }

    /** Invoke the closure (must hold one: `operator bool`). */
    void operator()() { repr_.ops->invoke(repr_.storage); }

    /** Whether this holds a callable. */
    explicit operator bool() const noexcept
    {
        return repr_.ops != nullptr;
    }

    /** Whether the held callable lives in the inline buffer (false
     * for empty or boxed). Introspection for tests and asserts. */
    bool
    storedInline() const noexcept
    {
        return repr_.ops != nullptr && repr_.ops->destroy == nullptr;
    }

    /**
     * Relocate out: return the representation and leave this empty.
     * The returned bytes own the closure — pass them to adopt()
     * exactly once (or leak a boxed payload).
     */
    Repr
    release() noexcept
    {
        Repr r = repr_;
        repr_.ops = nullptr;
        return r;
    }

    /** Relocate in: take ownership of a released representation. */
    static TaskFn
    adopt(const Repr &r) noexcept
    {
        TaskFn fn;
        fn.repr_ = r;
        return fn;
    }

  private:
    template <typename D>
    static constexpr Ops inlineOps{
        [](void *p) {
            (*std::launder(reinterpret_cast<D *>(p)))();
        },
        nullptr};

    template <typename D>
    static constexpr Ops boxedOps{
        [](void *p) {
            (**std::launder(reinterpret_cast<D **>(p)))();
        },
        [](void *p) {
            delete *std::launder(reinterpret_cast<D **>(p));
        }};

    void
    destroyPayload() noexcept
    {
        if (repr_.ops != nullptr && repr_.ops->destroy != nullptr)
            repr_.ops->destroy(repr_.storage);
    }

    Repr repr_;
};

static_assert(std::is_trivially_copyable_v<TaskFn::Repr>,
              "Repr is the relocation currency of the deque ring");

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_TASK_FN_HPP
