#include "energy/ledger.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hermes::energy {

EnergyLedger::EnergyLedger(PowerModel model, unsigned num_cores,
                           double t0, platform::FreqMhz freq0)
    : model_(std::move(model)), t0_(t0), tEnd_(t0), finished_(false),
      coreFreq_(num_cores, freq0),
      cursor_(num_cores, CoreCursor{t0, freq0, CoreActivity::Idle}),
      coreJoules_(num_cores, 0.0)
{
    HERMES_ASSERT(num_cores > 0, "ledger needs at least one core");
    events_.reserve(1024);
    for (platform::CoreId c = 0; c < num_cores; ++c)
        events_.push_back({t0, c, freq0, CoreActivity::Idle});
}

double
EnergyLedger::activityPower(platform::FreqMhz freq,
                            CoreActivity act) const
{
    switch (act) {
      case CoreActivity::Active:
        return model_.coreActivePower(freq);
      case CoreActivity::Spin:
        return model_.coreSpinPower(freq);
      case CoreActivity::Idle:
        return model_.coreIdlePower(freq);
    }
    HERMES_PANIC("unhandled CoreActivity");
}

void
EnergyLedger::advance(platform::CoreId core, double t)
{
    auto &cur = cursor_[core];
    HERMES_ASSERT(t >= cur.lastTime - 1e-12,
                  "ledger time must be non-decreasing per core (core "
                  << core << ": " << cur.lastTime << " -> " << t
                  << ")");
    const double dt = std::max(0.0, t - cur.lastTime);
    coreJoules_[core] += activityPower(cur.freq, cur.activity) * dt;
    cur.lastTime = t;
}

void
EnergyLedger::setCore(platform::CoreId core, double t,
                      platform::FreqMhz freq, CoreActivity activity)
{
    HERMES_ASSERT(core < coreFreq_.size(), "core out of range");
    HERMES_ASSERT(!finished_, "ledger already finished");
    advance(core, t);
    cursor_[core].freq = freq;
    cursor_[core].activity = activity;
    coreFreq_[core] = freq;
    events_.push_back({t, core, freq, activity});
}

void
EnergyLedger::setCoreFreq(platform::CoreId core, double t,
                          platform::FreqMhz freq)
{
    HERMES_ASSERT(core < coreFreq_.size(), "core out of range");
    setCore(core, t, freq, cursor_[core].activity);
}

void
EnergyLedger::setCoreActivity(platform::CoreId core, double t,
                              CoreActivity activity)
{
    HERMES_ASSERT(core < coreFreq_.size(), "core out of range");
    setCore(core, t, coreFreq_[core], activity);
}

void
EnergyLedger::finish(double t_end)
{
    HERMES_ASSERT(!finished_, "ledger already finished");
    HERMES_ASSERT(t_end >= t0_, "t_end precedes t0");
    for (platform::CoreId c = 0; c < coreFreq_.size(); ++c)
        advance(c, t_end);
    tEnd_ = t_end;
    finished_ = true;
}

double
EnergyLedger::totalJoules() const
{
    HERMES_ASSERT(finished_, "finish() the ledger before totals");
    double total = model_.uncorePower() * duration();
    for (double j : coreJoules_)
        total += j;
    return total;
}

double
EnergyLedger::duration() const
{
    HERMES_ASSERT(finished_, "finish() the ledger before totals");
    return tEnd_ - t0_;
}

double
EnergyLedger::powerAt(double t) const
{
    // Reconstruct each core's most recent state at time t from the
    // event log. O(events) — fine for traces, not for hot paths.
    std::vector<platform::FreqMhz> freq(coreFreq_.size(), 0);
    std::vector<CoreActivity> act(coreFreq_.size(),
                                  CoreActivity::Idle);
    for (const auto &ev : events_) {
        if (ev.time > t)
            break;
        freq[ev.core] = ev.freqMhz;
        act[ev.core] = ev.activity;
    }
    double p = model_.uncorePower();
    for (platform::CoreId c = 0; c < coreFreq_.size(); ++c)
        p += activityPower(freq[c], act[c]);
    return p;
}

std::vector<double>
EnergyLedger::powerSeries(double hz) const
{
    HERMES_ASSERT(finished_, "finish() the ledger before sampling");
    HERMES_ASSERT(hz > 0.0, "sample rate must be positive");
    std::vector<double> samples;
    const double dt = 1.0 / hz;

    // Single sweep: events are appended per-core in time order, but
    // interleaving across cores can regress slightly; sort a copy.
    std::vector<CoreEvent> evs = events_;
    std::stable_sort(evs.begin(), evs.end(),
                     [](const CoreEvent &a, const CoreEvent &b) {
                         return a.time < b.time;
                     });

    std::vector<platform::FreqMhz> freq(coreFreq_.size(),
                                        evs.empty() ? 0
                                                    : evs[0].freqMhz);
    std::vector<CoreActivity> act(coreFreq_.size(),
                                  CoreActivity::Idle);
    size_t next_ev = 0;
    for (double t = t0_; t < tEnd_; t += dt) {
        while (next_ev < evs.size() && evs[next_ev].time <= t) {
            freq[evs[next_ev].core] = evs[next_ev].freqMhz;
            act[evs[next_ev].core] = evs[next_ev].activity;
            ++next_ev;
        }
        double p = model_.uncorePower();
        for (platform::CoreId c = 0; c < coreFreq_.size(); ++c)
            p += activityPower(freq[c], act[c]);
        samples.push_back(p);
    }
    return samples;
}

double
EnergyLedger::seriesJoules(double hz) const
{
    double e = 0.0;
    for (double p : powerSeries(hz))
        e += p / hz;
    return e;
}

} // namespace hermes::energy
