/**
 * @file
 * Event-driven energy accounting.
 *
 * The ledger receives per-core (frequency, activity) change events
 * with caller timestamps — virtual time from the simulator or wall
 * time from the threaded runtime — and integrates package energy
 * exactly over the resulting piecewise-constant power function. It
 * also reconstructs the paper's 100 Hz meter trace (Figures 19-22) on
 * demand.
 */

#ifndef HERMES_ENERGY_LEDGER_HPP
#define HERMES_ENERGY_LEDGER_HPP

#include <vector>

#include "energy/power_model.hpp"
#include "platform/frequency.hpp"
#include "platform/topology.hpp"

namespace hermes::energy {

/** What a core is doing; determines its activity factor. */
enum class CoreActivity
{
    Idle,    ///< parked / OS-idle (clock-gated)
    Spin,    ///< worker hunting for victims (steal loop)
    Active,  ///< worker executing a task
};

/** One per-core state-change event. */
struct CoreEvent
{
    double time;                 ///< seconds
    platform::CoreId core;
    platform::FreqMhz freqMhz;   ///< frequency from this time on
    CoreActivity activity;       ///< activity from this time on
};

/** Exact integrator over per-core power state. */
class EnergyLedger
{
  public:
    /**
     * All cores start at `t0` parked at `freq0`, inactive.
     *
     * @param model power model used for integration
     * @param num_cores package core count (all contribute power,
     *        including cores that host no worker)
     */
    EnergyLedger(PowerModel model, unsigned num_cores, double t0,
                 platform::FreqMhz freq0);

    /** Record that `core` is now at `freq` / `activity` from `t`
     * on. Events for one core must have non-decreasing times. */
    void setCore(platform::CoreId core, double t,
                 platform::FreqMhz freq, CoreActivity activity);

    /** Change only the frequency, keeping the activity state. */
    void setCoreFreq(platform::CoreId core, double t,
                     platform::FreqMhz freq);

    /** Change only the activity, keeping the frequency. */
    void setCoreActivity(platform::CoreId core, double t,
                         CoreActivity activity);

    /** Close all segments at `t_end`; required before totals. */
    void finish(double t_end);

    /** Exact package energy in joules (uncore + all cores). */
    double totalJoules() const;

    /** Run duration in seconds (t_end - t0). */
    double duration() const;

    /** Instantaneous package power at time `t` (watts). */
    double powerAt(double t) const;

    /**
     * Emulated DAQ trace: package power sampled at `hz` from t0 to
     * t_end. The paper's rig: 100 samples/s, E = sum(P * 1/hz).
     */
    std::vector<double> powerSeries(double hz = 100.0) const;

    /** Riemann energy from the sampled trace (paper's computation). */
    double seriesJoules(double hz = 100.0) const;

    unsigned numCores() const
    {
        return static_cast<unsigned>(coreFreq_.size());
    }

    const PowerModel &model() const { return model_; }

  private:
    struct CoreCursor
    {
        double lastTime;
        platform::FreqMhz freq;
        CoreActivity activity;
    };

    /** Integrate `core` forward to time `t`. */
    void advance(platform::CoreId core, double t);

    /** Power of a core at `freq` in activity state `act`. */
    double activityPower(platform::FreqMhz freq,
                         CoreActivity act) const;

    PowerModel model_;
    double t0_;
    double tEnd_;
    bool finished_;
    std::vector<platform::FreqMhz> coreFreq_;   // current freq
    std::vector<CoreCursor> cursor_;
    std::vector<double> coreJoules_;
    std::vector<CoreEvent> events_;             // for powerAt/series
};

/** Energy-delay product. Lower is better. */
inline double
edp(double joules, double seconds)
{
    return joules * seconds;
}

/** Ratio `measured / baseline`; the paper's normalization. */
inline double
normalizedTo(double measured, double baseline)
{
    return baseline > 0.0 ? measured / baseline : 0.0;
}

} // namespace hermes::energy

#endif // HERMES_ENERGY_LEDGER_HPP
