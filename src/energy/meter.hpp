/**
 * @file
 * Live power sampling for the threaded runtime.
 *
 * Emulates the paper's measurement rig (current meters -> NI DAQ ->
 * LabVIEW at 100 samples/s): a background thread samples a
 * caller-supplied power probe at a fixed rate and accumulates energy
 * as sum(P * dt). With a CpufreqDvfs backend and a machine-specific
 * probe (e.g. RAPL) this would be real measurement; with SimulatedDvfs
 * it samples the model.
 */

#ifndef HERMES_ENERGY_METER_HPP
#define HERMES_ENERGY_METER_HPP

#include <atomic>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hermes::energy {

/** Background 100 Hz (configurable) power sampler. */
class LiveMeter
{
  public:
    using PowerProbe = std::function<double()>;

    /**
     * @param probe returns instantaneous package power in watts
     * @param hz sampling rate (paper: 100)
     */
    explicit LiveMeter(PowerProbe probe, double hz = 100.0);

    ~LiveMeter();

    LiveMeter(const LiveMeter &) = delete;
    LiveMeter &operator=(const LiveMeter &) = delete;

    /** Begin sampling. */
    void start();

    /** Stop sampling; idempotent. */
    void stop();

    /** Samples collected so far (copy). */
    std::vector<double> samples() const;

    /** Energy = sum of samples / hz, in joules. */
    double joules() const;

    double hz() const { return hz_; }

  private:
    void run();

    PowerProbe probe_;
    double hz_;
    std::atomic<bool> running_;
    std::thread thread_;
    mutable std::mutex mutex_;
    std::vector<double> samples_;
};

} // namespace hermes::energy

#endif // HERMES_ENERGY_METER_HPP
