#include "energy/meter.hpp"

#include <chrono>

#include "util/assert.hpp"

namespace hermes::energy {

LiveMeter::LiveMeter(PowerProbe probe, double hz)
    : probe_(std::move(probe)), hz_(hz), running_(false)
{
    HERMES_ASSERT(hz_ > 0.0, "sample rate must be positive");
    HERMES_ASSERT(probe_ != nullptr, "meter needs a power probe");
}

LiveMeter::~LiveMeter()
{
    stop();
}

void
LiveMeter::start()
{
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true))
        return;
    thread_ = std::thread([this] { run(); });
}

void
LiveMeter::stop()
{
    bool expected = true;
    if (!running_.compare_exchange_strong(expected, false))
        return;
    if (thread_.joinable())
        thread_.join();
}

std::vector<double>
LiveMeter::samples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
}

double
LiveMeter::joules() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    double e = 0.0;
    for (double p : samples_)
        e += p / hz_;
    return e;
}

void
LiveMeter::run()
{
    using clock = std::chrono::steady_clock;
    const auto period = std::chrono::duration_cast<clock::duration>(
        std::chrono::duration<double>(1.0 / hz_));
    auto next = clock::now();
    while (running_.load(std::memory_order_relaxed)) {
        const double p = probe_();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            samples_.push_back(p);
        }
        next += period;
        std::this_thread::sleep_until(next);
    }
}

} // namespace hermes::energy
