/**
 * @file
 * Analytic CMOS package power model.
 *
 * Substitutes for the paper's current-meter measurement rig
 * (docs/ENERGY_MODEL.md). Per-core power is the classic leakage +
 * switching split:
 *
 *     P_core(f) = P_static + P_dyn,max * (f/f_max) * (V(f)/V_max)^2
 *
 * with core voltage V(f) interpolated linearly across the hardware
 * frequency range — the superlinear power/frequency relationship DVFS
 * exploits. Idle (yielded) cores keep leaking and switch at a small
 * residual activity factor. Package power adds a frequency-invariant
 * uncore term. Calibration constants live in
 * platform/system_profile.cpp.
 */

#ifndef HERMES_ENERGY_POWER_MODEL_HPP
#define HERMES_ENERGY_POWER_MODEL_HPP

#include "platform/frequency.hpp"
#include "platform/system_profile.hpp"

namespace hermes::energy {

/** Evaluates the power equations for one system's calibration. */
class PowerModel
{
  public:
    /**
     * @param params calibration constants
     * @param fmin_mhz slowest hardware rung (anchors voltsAtFmin)
     * @param fmax_mhz fastest hardware rung (anchors voltsAtFmax)
     */
    PowerModel(platform::PowerParams params,
               platform::FreqMhz fmin_mhz,
               platform::FreqMhz fmax_mhz);

    /** Convenience: anchor the voltage curve to a profile's full
     * hardware ladder (not a restricted experiment ladder). */
    explicit PowerModel(const platform::SystemProfile &profile);

    /** Core voltage at `f`, linear in f over [fmin, fmax]. */
    double voltage(platform::FreqMhz f) const;

    /** Leakage at `f` (voltage-dependent, ~V^2). */
    double leakagePower(platform::FreqMhz f) const;

    /** Power of a busy core running at `f` (watts). */
    double coreActivePower(platform::FreqMhz f) const;

    /** Power of a worker spinning in the steal loop at `f`. Thieves
     * hunt at their current tempo: a baseline runtime spins its idle
     * workers at f_max, HERMES at the procrastinated frequency. */
    double coreSpinPower(platform::FreqMhz f) const;

    /**
     * Power of the core of a parked worker at `f`: the worker thread
     * is blocked in the kernel, so the core drops into a C-state —
     * clocks gated, most of the core power-gated, a residual leakage
     * share plus the `idleActivity` switching floor remaining.
     * Driven by Runtime::packagePower() whenever a worker is
     * published parked on the ParkingLot.
     */
    double parkedPower(platform::FreqMhz f) const;

    /** Power of a core with no worker mapped onto it at `f`. The OS
     * idle loop parks unoccupied cores the same way the runtime's
     * parking lot parks workers, so this equals parkedPower(). */
    double coreIdlePower(platform::FreqMhz f) const;

    /** Frequency-independent package power (watts). */
    double uncorePower() const { return params_.uncoreWatts; }

    const platform::PowerParams &params() const { return params_; }
    platform::FreqMhz fmin() const { return fmin_; }
    platform::FreqMhz fmax() const { return fmax_; }

  private:
    double dynamicPower(platform::FreqMhz f, double activity) const;

    platform::PowerParams params_;
    platform::FreqMhz fmin_;
    platform::FreqMhz fmax_;
};

} // namespace hermes::energy

#endif // HERMES_ENERGY_POWER_MODEL_HPP
