#include "energy/power_model.hpp"

#include "util/assert.hpp"

namespace hermes::energy {

PowerModel::PowerModel(platform::PowerParams params,
                       platform::FreqMhz fmin_mhz,
                       platform::FreqMhz fmax_mhz)
    : params_(params), fmin_(fmin_mhz), fmax_(fmax_mhz)
{
    HERMES_ASSERT(fmax_ > fmin_, "fmax must exceed fmin");
    HERMES_ASSERT(params_.voltsAtFmax >= params_.voltsAtFmin,
                  "voltage must be non-decreasing in frequency");
}

PowerModel::PowerModel(const platform::SystemProfile &profile)
    : PowerModel(profile.power, profile.ladder.slowest(),
                 profile.ladder.fastest())
{}

double
PowerModel::voltage(platform::FreqMhz f) const
{
    // Clamp: a restricted experiment ladder never leaves the hardware
    // range, but host ladders may probe beyond it.
    if (f <= fmin_)
        return params_.voltsAtFmin;
    if (f >= fmax_)
        return params_.voltsAtFmax;
    const double frac = static_cast<double>(f - fmin_)
        / static_cast<double>(fmax_ - fmin_);
    return params_.voltsAtFmin
        + frac * (params_.voltsAtFmax - params_.voltsAtFmin);
}

double
PowerModel::dynamicPower(platform::FreqMhz f, double activity) const
{
    const double f_ratio = static_cast<double>(f)
        / static_cast<double>(fmax_);
    const double v_ratio = voltage(f) / params_.voltsAtFmax;
    return activity * params_.dynMaxWatts * f_ratio * v_ratio
        * v_ratio;
}

double
PowerModel::leakagePower(platform::FreqMhz f) const
{
    // Leakage scales with supply voltage (~V^2 over a VID window).
    const double v_ratio = voltage(f) / params_.voltsAtFmax;
    return params_.staticWatts * v_ratio * v_ratio;
}

double
PowerModel::coreActivePower(platform::FreqMhz f) const
{
    return leakagePower(f) + dynamicPower(f, 1.0);
}

double
PowerModel::coreSpinPower(platform::FreqMhz f) const
{
    return leakagePower(f) + dynamicPower(f, params_.spinActivity);
}

double
PowerModel::parkedPower(platform::FreqMhz f) const
{
    // Parked cores sit in a deep C-state: clocks gated and most of
    // the core power-gated, leaving a residual leakage share. This
    // matters for low worker counts — the paper's savings hold even
    // with 2 workers on a 32-core module, which requires non-running
    // cores to contribute little to measured power.
    constexpr double c_state_gating = 0.2;
    return c_state_gating * leakagePower(f)
        + dynamicPower(f, params_.idleActivity);
}

double
PowerModel::coreIdlePower(platform::FreqMhz f) const
{
    return parkedPower(f);
}

} // namespace hermes::energy
