/**
 * @file
 * Real DVFS through the Linux cpufreq sysfs interface.
 *
 * On hosts that expose /sys/devices/system/cpu/cpuN/cpufreq with the
 * `userspace` governor, this backend performs actual frequency
 * scaling, making HERMES a real energy-saving runtime rather than a
 * simulation. Availability is probed at construction; the container
 * this reproduction ships in has no cpufreq, so the probe normally
 * reports unavailable and experiments fall back to SimulatedDvfs
 * (see docs/ENERGY_MODEL.md).
 */

#ifndef HERMES_DVFS_CPUFREQ_HPP
#define HERMES_DVFS_CPUFREQ_HPP

#include <string>
#include <vector>

#include "dvfs/backend.hpp"
#include "platform/topology.hpp"

namespace hermes::dvfs {

/** sysfs cpufreq backend; maps domains onto sets of host cores. */
class CpufreqDvfs : public DvfsBackend
{
  public:
    /**
     * @param topology host topology; a domain's frequency request is
     *        applied to every core in the domain
     * @param sysfs_root overridable for tests (default /sys/...)
     */
    explicit CpufreqDvfs(
        platform::Topology topology,
        std::string sysfs_root = "/sys/devices/system/cpu");

    /** Whether the host exposes a writable cpufreq interface. */
    static bool hostAvailable(
        const std::string &sysfs_root = "/sys/devices/system/cpu");

    /** Whether this instance successfully bound to sysfs. */
    bool available() const { return available_; }

    /** Frequencies advertised by core 0, fastest first (kHz->MHz). */
    std::vector<platform::FreqMhz> availableFrequencies() const;

    unsigned numDomains() const override
    {
        return topology_.numDomains();
    }

    platform::FreqMhz
    domainFreq(platform::DomainId domain) const override;

    void setDomainFreq(platform::DomainId domain,
                       platform::FreqMhz freq_mhz,
                       double now) override;

  private:
    std::string corePath(platform::CoreId core,
                         const std::string &leaf) const;
    bool writeCoreFile(platform::CoreId core, const std::string &leaf,
                       const std::string &value) const;
    std::string readCoreFile(platform::CoreId core,
                             const std::string &leaf) const;

    platform::Topology topology_;
    std::string root_;
    bool available_;
};

} // namespace hermes::dvfs

#endif // HERMES_DVFS_CPUFREQ_HPP
