/**
 * @file
 * Simulated DVFS backend.
 *
 * Substitutes for the per-core DVFS hardware of the paper's AMD
 * systems (see docs/ENERGY_MODEL.md). Maintains per-domain
 * frequency state,
 * validates requests against the ladder, counts transitions, and
 * records the full transition timeline so the energy ledger can
 * integrate power exactly. Thread-safe: the threaded runtime issues
 * requests from many workers.
 */

#ifndef HERMES_DVFS_SIMULATED_HPP
#define HERMES_DVFS_SIMULATED_HPP

#include <mutex>
#include <vector>

#include "dvfs/backend.hpp"
#include "platform/frequency.hpp"

namespace hermes::dvfs {

/** In-memory DVFS with transition recording. */
class SimulatedDvfs : public DvfsBackend
{
  public:
    /**
     * @param num_domains independently scalable domains
     * @param ladder the frequencies requests must come from
     * @param transition_latency_sec modelled switch latency, exposed
     *        via latency() for the simulator's delayed-effect model
     */
    SimulatedDvfs(unsigned num_domains,
                  platform::FrequencyLadder ladder,
                  double transition_latency_sec = 50e-6);

    unsigned numDomains() const override { return numDomains_; }

    platform::FreqMhz
    domainFreq(platform::DomainId domain) const override;

    void setDomainFreq(platform::DomainId domain,
                       platform::FreqMhz freq_mhz,
                       double now) override;

    /** Modelled per-switch latency in seconds. */
    double latency() const { return latencySec_; }

    /** Ladder this backend validates against. */
    const platform::FrequencyLadder &ladder() const { return ladder_; }

    /** Total accepted (non-redundant) transitions so far. */
    size_t transitionCount() const;

    /** Copy of the recorded transition timeline, in request order. */
    std::vector<Transition> timeline() const;

    /** Reset all domains to `freq_mhz` and clear the timeline. */
    void reset(platform::FreqMhz freq_mhz);

  private:
    unsigned numDomains_;
    platform::FrequencyLadder ladder_;
    double latencySec_;

    mutable std::mutex mutex_;
    std::vector<platform::FreqMhz> freqs_;
    std::vector<Transition> timeline_;
};

/** Backend that ignores requests; the Cilk-Plus-baseline stand-in. */
class NullDvfs : public DvfsBackend
{
  public:
    NullDvfs(unsigned num_domains, platform::FreqMhz fixed_mhz)
        : numDomains_(num_domains), fixedMhz_(fixed_mhz)
    {}

    unsigned numDomains() const override { return numDomains_; }

    platform::FreqMhz
    domainFreq(platform::DomainId) const override
    {
        return fixedMhz_;
    }

    void
    setDomainFreq(platform::DomainId, platform::FreqMhz,
                  double) override
    {}

  private:
    unsigned numDomains_;
    platform::FreqMhz fixedMhz_;
};

} // namespace hermes::dvfs

#endif // HERMES_DVFS_SIMULATED_HPP
