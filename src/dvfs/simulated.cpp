#include "dvfs/simulated.hpp"

#include "util/assert.hpp"

namespace hermes::dvfs {

SimulatedDvfs::SimulatedDvfs(unsigned num_domains,
                             platform::FrequencyLadder ladder,
                             double transition_latency_sec)
    : numDomains_(num_domains), ladder_(std::move(ladder)),
      latencySec_(transition_latency_sec),
      freqs_(num_domains, ladder_.fastest())
{
    HERMES_ASSERT(num_domains > 0, "need at least one clock domain");
}

platform::FreqMhz
SimulatedDvfs::domainFreq(platform::DomainId domain) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    HERMES_ASSERT(domain < numDomains_,
                  "domain " << domain << " out of range");
    return freqs_[domain];
}

void
SimulatedDvfs::setDomainFreq(platform::DomainId domain,
                             platform::FreqMhz freq_mhz, double now)
{
    HERMES_ASSERT(ladder_.contains(freq_mhz),
                  freq_mhz << " MHz is not a ladder rung");
    std::lock_guard<std::mutex> lock(mutex_);
    HERMES_ASSERT(domain < numDomains_,
                  "domain " << domain << " out of range");
    if (freqs_[domain] == freq_mhz)
        return;
    timeline_.push_back({now, domain, freqs_[domain], freq_mhz});
    freqs_[domain] = freq_mhz;
}

size_t
SimulatedDvfs::transitionCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return timeline_.size();
}

std::vector<Transition>
SimulatedDvfs::timeline() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return timeline_;
}

void
SimulatedDvfs::reset(platform::FreqMhz freq_mhz)
{
    HERMES_ASSERT(ladder_.contains(freq_mhz),
                  freq_mhz << " MHz is not a ladder rung");
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &f : freqs_)
        f = freq_mhz;
    timeline_.clear();
}

} // namespace hermes::dvfs
