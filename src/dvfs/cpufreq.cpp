#include "dvfs/cpufreq.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/log.hpp"

namespace hermes::dvfs {

CpufreqDvfs::CpufreqDvfs(platform::Topology topology,
                         std::string sysfs_root)
    : topology_(std::move(topology)), root_(std::move(sysfs_root)),
      available_(false)
{
    available_ = hostAvailable(root_);
    if (!available_) {
        util::warn("cpufreq sysfs not available under " + root_
                   + "; CpufreqDvfs calls will be no-ops");
        return;
    }
    // The userspace governor is required for scaling_setspeed.
    for (platform::CoreId c = 0; c < topology_.numCores(); ++c) {
        if (!writeCoreFile(c, "scaling_governor", "userspace")) {
            util::warn("could not set userspace governor on core "
                       + std::to_string(c));
            available_ = false;
            return;
        }
    }
}

bool
CpufreqDvfs::hostAvailable(const std::string &sysfs_root)
{
    std::ifstream probe(sysfs_root
                        + "/cpu0/cpufreq/scaling_available_frequencies");
    return probe.good();
}

std::vector<platform::FreqMhz>
CpufreqDvfs::availableFrequencies() const
{
    std::vector<platform::FreqMhz> out;
    if (!available_)
        return out;
    std::istringstream iss(
        readCoreFile(0, "scaling_available_frequencies"));
    unsigned long khz = 0;
    while (iss >> khz)
        out.push_back(static_cast<platform::FreqMhz>(khz / 1000));
    std::sort(out.begin(), out.end(),
              std::greater<platform::FreqMhz>());
    return out;
}

platform::FreqMhz
CpufreqDvfs::domainFreq(platform::DomainId domain) const
{
    if (!available_)
        return 0;
    const auto cores = topology_.coresIn(domain);
    const std::string text = readCoreFile(cores.front(),
                                          "scaling_cur_freq");
    return static_cast<platform::FreqMhz>(
        std::strtoul(text.c_str(), nullptr, 10) / 1000);
}

void
CpufreqDvfs::setDomainFreq(platform::DomainId domain,
                           platform::FreqMhz freq_mhz, double)
{
    if (!available_)
        return;
    const std::string khz = std::to_string(
        static_cast<unsigned long>(freq_mhz) * 1000);
    for (platform::CoreId c : topology_.coresIn(domain))
        writeCoreFile(c, "scaling_setspeed", khz);
}

std::string
CpufreqDvfs::corePath(platform::CoreId core,
                      const std::string &leaf) const
{
    return root_ + "/cpu" + std::to_string(core) + "/cpufreq/" + leaf;
}

bool
CpufreqDvfs::writeCoreFile(platform::CoreId core,
                           const std::string &leaf,
                           const std::string &value) const
{
    std::ofstream f(corePath(core, leaf));
    if (!f)
        return false;
    f << value;
    return static_cast<bool>(f);
}

std::string
CpufreqDvfs::readCoreFile(platform::CoreId core,
                          const std::string &leaf) const
{
    std::ifstream f(corePath(core, leaf));
    std::string text;
    std::getline(f, text);
    return text;
}

} // namespace hermes::dvfs
