/**
 * @file
 * The DVFS abstraction HERMES drives.
 *
 * The tempo controller only ever needs two operations: read a clock
 * domain's current frequency and request a new one. Keeping the
 * interface this small lets the identical controller run against real
 * sysfs cpufreq, the simulated backend, or a test recorder.
 *
 * Timestamps are supplied by the caller (wall-clock seconds in the
 * threaded runtime, virtual seconds in the simulator) so one backend
 * serves both substrates.
 */

#ifndef HERMES_DVFS_BACKEND_HPP
#define HERMES_DVFS_BACKEND_HPP

#include <vector>

#include "platform/frequency.hpp"
#include "platform/topology.hpp"

namespace hermes::dvfs {

/** One recorded frequency change. */
struct Transition
{
    double time;                 ///< caller-supplied timestamp (s)
    platform::DomainId domain;   ///< affected clock domain
    platform::FreqMhz fromMhz;   ///< previous frequency
    platform::FreqMhz toMhz;     ///< requested frequency
};

/** Abstract per-clock-domain frequency control. */
class DvfsBackend
{
  public:
    virtual ~DvfsBackend() = default;

    /** Number of independently scalable clock domains. */
    virtual unsigned numDomains() const = 0;

    /** Current frequency of `domain` in MHz. */
    virtual platform::FreqMhz
    domainFreq(platform::DomainId domain) const = 0;

    /**
     * Request `freq_mhz` on `domain` at caller time `now` (seconds).
     * Redundant requests (same frequency) must be cheap no-ops.
     */
    virtual void setDomainFreq(platform::DomainId domain,
                               platform::FreqMhz freq_mhz,
                               double now) = 0;
};

} // namespace hermes::dvfs

#endif // HERMES_DVFS_BACKEND_HPP
