/**
 * @file
 * Umbrella header: the whole HERMES library.
 *
 * Individual modules can be included piecemeal; this pulls in the
 * public API surface used by the examples and downstream projects.
 */

#ifndef HERMES_HERMES_HPP
#define HERMES_HERMES_HPP

#include "core/immediacy_list.hpp"
#include "core/policy.hpp"
#include "core/tempo_controller.hpp"
#include "core/threshold_profiler.hpp"
#include "dvfs/backend.hpp"
#include "dvfs/cpufreq.hpp"
#include "dvfs/simulated.hpp"
#include "energy/ledger.hpp"
#include "energy/meter.hpp"
#include "energy/power_model.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "platform/affinity.hpp"
#include "platform/frequency.hpp"
#include "platform/system_profile.hpp"
#include "platform/topology.hpp"
#include "runtime/inject_queue.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task_group.hpp"
#include "sim/dag.hpp"
#include "sim/dag_generators.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

#endif // HERMES_HERMES_HPP
